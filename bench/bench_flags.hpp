// Flag handling shared by every bench binary.  Depends only on the
// header-only helpers in support/ (whose include path every bench target
// inherits via soap::build_flags), so benches that don't link
// soap::kernels can use it too.
#pragma once

#include <cstddef>
#include <string>

#include "support/parse.hpp"

namespace soap::bench {

/// True when the binary was invoked with --smoke (CTest bench-smoke entries:
/// exercise the code path on the smallest problem instead of the full run).
inline bool smoke_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

/// Worker budget from `--threads N` / `--threads=N` (SdgOptions::threads
/// semantics: 1 = serial, 0 = all hardware threads), via the shared
/// support::consume_size_flag scanner.  `fallback` when the flag is absent
/// or malformed, so bench drivers stay deterministic and single-threaded by
/// default.
inline std::size_t threads_requested(int argc, char** argv,
                                     std::size_t fallback = 1) {
  std::size_t value = fallback;
  for (int i = 1; i < argc; ++i) {
    switch (support::consume_size_flag(argc, argv, i, "threads", value)) {
      case support::FlagParse::kOk:
        return value;
      case support::FlagParse::kBadValue:
        return fallback;
      case support::FlagParse::kNoMatch:
        break;
    }
  }
  return fallback;
}

/// Registry family filter from `--family NAME` / `--family=NAME`;
/// `fallback` (typically the driver's own family, or "" for all families)
/// when the flag is absent or malformed — same silent-fallback policy as
/// threads_requested, so bench drivers never exit on a flag typo.
inline std::string family_requested(int argc, char** argv,
                                    std::string fallback = "") {
  std::string value;
  for (int i = 1; i < argc; ++i) {
    switch (support::consume_string_flag(argc, argv, i, "family", value)) {
      case support::FlagParse::kOk:
        return value;
      case support::FlagParse::kBadValue:
        return fallback;
      case support::FlagParse::kNoMatch:
        break;
    }
  }
  return fallback;
}

}  // namespace soap::bench
