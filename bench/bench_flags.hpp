// Flag handling shared by every bench binary, kept free of library
// dependencies so benches that don't link soap::kernels can use it too.
#pragma once

#include <string>

namespace soap::bench {

/// True when the binary was invoked with --smoke (CTest bench-smoke entries:
/// exercise the code path on the smallest problem instead of the full run).
inline bool smoke_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

}  // namespace soap::bench
