// Experiment T2-poly: the Polybench block of Table 2 (30 kernels).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return soap::bench::run_family(
      "Table 2 / Polybench: I/O lower bounds (leading-order terms)",
      "polybench", soap::bench::smoke_requested(argc, argv) ? 1 : -1,
      soap::bench::threads_requested(argc, argv));
}
