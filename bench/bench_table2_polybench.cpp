// Experiment T2-poly: the Polybench block of Table 2 (30 kernels).
#include "bench_common.hpp"

int main() {
  return soap::bench::run_category(
      "Table 2 / Polybench: I/O lower bounds (leading-order terms)",
      "polybench");
}
