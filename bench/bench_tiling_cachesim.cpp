// Experiment V-tile: the derived tilings are I/O-near-optimal — simulated
// misses of the tiled schedule approach the analytic lower bound while the
// untiled order is far above it (Section 4.5's compiler guideline).
#include <cstdio>
#include <vector>

#include "bench_flags.hpp"
#include "bounds/single_statement.hpp"
#include "cachesim/sim.hpp"
#include "frontend/lower.hpp"
#include "schedule/codegen.hpp"
#include "schedule/tiling.hpp"

using namespace soap;

namespace {

void sweep(const char* name, const char* src,
           const std::map<std::string, long long>& params,
           const std::vector<long long>& cache_sizes) {
  Program p = frontend::parse_program(src);
  auto b = bounds::single_statement_bound(p.statements[0]);
  if (!b) return;
  std::printf("\n%s: Q >= %s\n", name, b->Q_leading.str().c_str());
  std::printf("  %6s | %8s | %12s | %12s | %12s | %12s | %s\n", "S", "tile",
              "untiled LRU", "tiled LRU", "tiled Belady", "lower bound",
              "tiled/bound");
  for (long long S : cache_sizes) {
    auto tiles = schedule::concrete_tiles(p.statements[0], *b, S, params);
    auto untiled = cachesim::measure_statement(p.statements[0], params, {},
                                               static_cast<std::size_t>(S));
    auto tiled = cachesim::measure_statement(p.statements[0], params, tiles,
                                             static_cast<std::size_t>(S));
    std::map<std::string, double> env = {{"S", static_cast<double>(S)}};
    for (const auto& [k, v] : params) env[k] = static_cast<double>(v);
    double lower = b->Q.eval(env);
    long long tile0 = tiles.begin()->second;
    std::printf("  %6lld | %8lld | %12lld | %12lld | %12lld | %12.0f | %.2fx\n",
                S, tile0, untiled.lru.io(), tiled.lru.io(), tiled.belady.io(),
                lower, static_cast<double>(tiled.belady.io()) / lower);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke (CTest bench-smoke): one gemm cache size plus the codegen print
  // below; the full sweeps simulate millions of accesses and are too slow
  // for sanitizer runs.
  bool smoke = soap::bench::smoke_requested(argc, argv);
  std::printf("=== Tiled schedules vs analytic lower bounds (cache sim) ===\n");
  sweep("gemm N=48", R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)",
        {{"N", 48}}, smoke ? std::vector<long long>{108}
                           : std::vector<long long>{108, 192, 300, 768});
  if (!smoke) sweep("jacobi2d N=40 T=12", R"(
for t in range(T):
  for i in range(1, N - 1):
    for j in range(1, N - 1):
      A[i,j,t+1] = A[i,j,t] + A[i-1,j,t] + A[i+1,j,t] + A[i,j-1,t] + A[i,j+1,t]
)",
        {{"N", 40}, {"T", 12}}, {128, 256, 512});
  std::printf("\nGenerated tiled code for gemm (S = 768):\n%s\n", [] {
    Program p = frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
    auto b = bounds::single_statement_bound(p.statements[0]);
    auto tiles = schedule::concrete_tiles(p.statements[0], *b, 768,
                                          {{"N", 4096}});
    return schedule::emit_tiled_c(p.statements[0], tiles);
  }().c_str());
  return 0;
}
