// Serving-path benchmarks (docs/SERVING.md): what the memoized bound
// cache buys.
//
//   BM_KernelServe/{cold,warm}/<kernel>  — one kernel request against a
//     fresh cache (full derivation) vs a primed cache (pure hit).  The
//     committed baseline demonstrates the headline gap: a warm hit is
//     orders of magnitude below the cold derivation.
//   BM_CorpusServe/{cold,warm}           — a 10-kernel corpus sweep
//     through analyze_corpus_cached, cold vs fully warm.
//   BM_HitRateSweep/<pct>                — synthetic request stream at a
//     fixed hit percentage against a cheap derive, with the achieved
//     hit_rate and p50/p99 per-request latency reported as counters.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "kernels/table2.hpp"
#include "sdg/multi_statement.hpp"
#include "service/analyze.hpp"
#include "service/bound_cache.hpp"
#include "service/cache_key.hpp"
#include "support/digest.hpp"
#include "symbolic/expr.hpp"

namespace {

using soap::service::BoundCache;
using soap::service::CacheKey;

const char* const kCorpus[] = {"gemm",   "cholesky", "jacobi2d", "heat3d",
                               "fdtd2d", "atax",     "gemver",   "conv",
                               "bert_encoder", "lulesh"};

std::vector<const soap::kernels::KernelEntry*> corpus_entries() {
  std::vector<const soap::kernels::KernelEntry*> entries;
  for (const char* name : kCorpus) {
    entries.push_back(&soap::kernels::kernel_by_name(name));
  }
  return entries;
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted,
                         std::uint64_t p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      std::min<std::uint64_t>(sorted.size() - 1, sorted.size() * p / 100));
  return sorted[idx];
}

// One kernel request against a fresh cache per iteration: every request
// pays the full derivation (the miss path the cache exists to amortize).
void BM_KernelCold(benchmark::State& state, const std::string& name) {
  const auto& entry = soap::kernels::kernel_by_name(name);
  for (auto _ : state) {
    BoundCache cache;
    auto outcome = soap::service::analyze_kernel_cached(cache, entry);
    benchmark::DoNotOptimize(outcome);
  }
}

// Same request against a primed cache: every iteration is a hit returning
// the interned bound.  p50/p99 per-request latency become counters so the
// baseline records the serving tail, not only the mean.
void BM_KernelWarm(benchmark::State& state, const std::string& name) {
  const auto& entry = soap::kernels::kernel_by_name(name);
  BoundCache cache;
  (void)soap::service::analyze_kernel_cached(cache, entry);  // prime
  std::vector<std::uint64_t> latencies_ns;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    auto outcome = soap::service::analyze_kernel_cached(cache, entry);
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(outcome);
    latencies_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  std::sort(latencies_ns.begin(), latencies_ns.end());
  state.counters["p50_us"] =
      static_cast<double>(percentile(latencies_ns, 50)) / 1000.0;
  state.counters["p99_us"] =
      static_cast<double>(percentile(latencies_ns, 99)) / 1000.0;
}

void BM_CorpusCold(benchmark::State& state) {
  const auto entries = corpus_entries();
  for (auto _ : state) {
    BoundCache cache;
    auto report = soap::service::analyze_corpus_cached(cache, entries);
    benchmark::DoNotOptimize(report);
  }
}

void BM_CorpusWarm(benchmark::State& state) {
  const auto entries = corpus_entries();
  BoundCache cache;
  (void)soap::service::analyze_corpus_cached(cache, entries);  // prime
  for (auto _ : state) {
    auto report = soap::service::analyze_corpus_cached(cache, entries);
    benchmark::DoNotOptimize(report);
  }
  state.counters["hit_rate"] = cache.stats().hit_rate();
}

CacheKey synthetic_key(std::uint64_t i) {
  return CacheKey{
      soap::support::Digest{i * 0x9e3779b97f4a7c15ULL + 0x5eed, i + 1}};
}

soap::sdg::MultiStatementBound synthetic_bound() {
  const soap::sym::Expr n = soap::sym::Expr::symbol("N");
  const soap::sym::Expr s = soap::sym::Expr::symbol("S");
  soap::sdg::MultiStatementBound bound;
  bound.Q_leading =
      soap::sym::Expr::constant(2) * n * n * n *
      soap::sym::pow(s, soap::Rational(-1, 2));
  bound.Q_sdg = bound.Q_leading;
  return bound;
}

// A deterministic request stream where range(0) percent of requests go to
// an already-cached hot set and the rest derive fresh keys (a cheap
// synthetic derive, so the measured cost is the cache machinery itself).
void BM_HitRateSweep(benchmark::State& state) {
  const std::uint64_t hit_pct = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kHot = 64;
  BoundCache cache;
  const soap::sdg::MultiStatementBound bound = synthetic_bound();
  for (std::uint64_t i = 0; i < kHot; ++i) {
    cache.put(synthetic_key(i), bound);
  }
  std::uint64_t request = 0;
  std::uint64_t fresh = kHot;
  std::vector<std::uint64_t> latencies_ns;
  for (auto _ : state) {
    const bool hit = (request % 100) < hit_pct;
    const CacheKey key =
        hit ? synthetic_key(request % kHot) : synthetic_key(fresh++);
    const auto t0 = std::chrono::steady_clock::now();
    auto result = cache.get_or_derive(key, [&] { return bound; });
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(result);
    latencies_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    ++request;
  }
  std::sort(latencies_ns.begin(), latencies_ns.end());
  state.counters["hit_rate"] = cache.stats().hit_rate();
  state.counters["p50_us"] =
      static_cast<double>(percentile(latencies_ns, 50)) / 1000.0;
  state.counters["p99_us"] =
      static_cast<double>(percentile(latencies_ns, 99)) / 1000.0;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

}  // namespace

int main(int argc, char** argv) {
  for (const char* name : {"gemm", "atax", "bert_encoder"}) {
    benchmark::RegisterBenchmark(
        ("BM_KernelServe/cold/" + std::string(name)).c_str(), BM_KernelCold,
        std::string(name));
    benchmark::RegisterBenchmark(
        ("BM_KernelServe/warm/" + std::string(name)).c_str(), BM_KernelWarm,
        std::string(name));
  }
  benchmark::RegisterBenchmark("BM_CorpusServe/cold", BM_CorpusCold);
  benchmark::RegisterBenchmark("BM_CorpusServe/warm", BM_CorpusWarm);
  benchmark::RegisterBenchmark("BM_HitRateSweep", BM_HitRateSweep)
      ->Arg(0)
      ->Arg(50)
      ->Arg(90)
      ->Arg(100);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
