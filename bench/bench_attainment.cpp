// Experiment V-attain: the corpus-wide close-the-loop table (bounds ->
// optimal tiles -> tiled trace -> simulated I/O), the paper's attainability
// story made reproducible per registry kernel.  Exits non-zero if any row
// violates the soundness invariant Q_sim_belady >= Q_lb, so the bench-smoke
// CTest entry doubles as a CI gate.
//
//   bench_attainment [--smoke] [--family NAME] [--threads N]
//
// --smoke restricts to one kernel per family and a single cache size so
// sanitizer CI stays fast; the full run sweeps every registry kernel over
// the default cache sizes.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/attainment.hpp"
#include "bench_flags.hpp"

int main(int argc, char** argv) {
  using namespace soap;
  const bool smoke = bench::smoke_requested(argc, argv);
  const std::string family = bench::family_requested(argc, argv);
  analysis::AttainmentOptions options;
  options.threads = bench::threads_requested(argc, argv);
  if (smoke) options.cache_sizes = {96};

  const kernels::Registry& registry = kernels::Registry::instance();
  std::vector<const kernels::KernelEntry*> rows;
  if (!family.empty()) {
    rows = registry.family(family);
    if (rows.empty()) {
      std::printf("unknown kernel family '%s'\n", family.c_str());
      return 1;
    }
    if (smoke) rows.erase(rows.begin() + 1, rows.end());
  } else if (smoke) {
    for (const std::string& fam : registry.families()) {
      rows.push_back(registry.family(fam).front());
    }
  } else {
    for (const kernels::KernelEntry& k : registry.kernels()) {
      rows.push_back(&k);
    }
  }

  std::printf("=== Attainment: bounds -> schedules -> simulated I/O ===\n");
  std::vector<analysis::AttainmentRow> table =
      analysis::attainment_table(rows, options);
  std::fputs(analysis::format_attainment_table(table).c_str(), stdout);
  return analysis::count_unsound(table) == 0 ? 0 : 1;
}
