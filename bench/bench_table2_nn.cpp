// Experiment T2-nn: the deep learning block of Table 2, plus the conditional
// convolution intensities of Example 6 (Section 5.3).
#include <cstdio>

#include "bench_common.hpp"
#include "bounds/single_statement.hpp"
#include "frontend/lower.hpp"

namespace {

// Example 6: sigma = 1 maximal overlap vs sigma >= kernel injective case.
void conv_conditional_intensities() {
  using namespace soap;
  std::printf("\nExample 6 (direct convolution, conditional intensity):\n");
  auto p = frontend::parse_program(R"(
for b in range(B):
  for c in range(Cin):
    for k in range(Cout):
      for h in range(Hout):
        for w in range(Wout):
          for r in range(Hker):
            for s in range(Wker):
              Out[k,h,w,b] += Img[r + h, s + w, c, b] * F[k,r,s,c]
)");
  Statement injective = p.statements[0];
  auto case1 = bounds::single_statement_bound(injective);
  Statement overlap = p.statements[0];
  overlap.max_overlap_dims["Img"] = {0, 1};
  auto case2 = bounds::single_statement_bound(overlap);
  if (case1) {
    std::printf("  case (1) sigma >= kernel (injective):  rho = %s,  Q >= %s\n",
                case1->rho.str().c_str(), case1->Q_leading.str().c_str());
  }
  if (case2) {
    std::printf("  case (2) sigma = 1 (maximal overlap):  rho = %s,  Q >= %s\n",
                case2->rho.str().c_str(), case2->Q_leading.str().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = soap::bench::smoke_requested(argc, argv);
  int r = soap::bench::run_family(
      "Table 2 / Neural networks: I/O lower bounds", "neural", smoke ? 1 : -1,
      soap::bench::threads_requested(argc, argv));
  if (!smoke) conv_conditional_intensities();
  return r;
}
