// Experiment corpus-fam: the registered corpus beyond the fixed Table 2
// blocks, printed family by family.  `--family NAME` restricts to one
// registry family (the Table 2 drivers remain the published three); by
// default every registered family is printed in registry order, so a
// newly registered family shows up here with no driver change.
#include <cstdio>
#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace soap;
  bool smoke = bench::smoke_requested(argc, argv);
  std::size_t threads = bench::threads_requested(argc, argv);
  std::string family = bench::family_requested(argc, argv);
  int max_rows = smoke ? 1 : -1;
  if (!family.empty()) {
    return bench::run_family(
        ("Corpus / " + family + ": I/O lower bounds").c_str(), family,
        max_rows, threads);
  }
  int rc = 0;
  for (const std::string& fam : kernels::Registry::instance().families()) {
    rc |= bench::run_family(("Corpus / " + fam + ": I/O lower bounds").c_str(),
                            fam, max_rows, threads);
  }
  std::printf("\n%zu kernels registered across %zu families.\n",
              kernels::Registry::instance().size(),
              kernels::Registry::instance().families().size());
  return rc;
}
