// Shared table-printing helpers for the Table 2 reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "bench_flags.hpp"
#include "kernels/table2.hpp"

namespace soap::bench {

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-22s | %-38s | %-38s | %-34s | %s\n", "kernel",
              "SOAP bound (this implementation)", "paper bound (Table 2)",
              "prior state of the art", "improv.");
  std::printf("%s\n", std::string(150, '-').c_str());
}

inline void print_row(const kernels::KernelEntry& k) {
  sym::Expr ours = kernels::analyze_kernel(k);
  bool match = sym::numerically_equal(ours, k.paper_bound);
  std::printf("%-22s | %-38s | %-38s | %-34s | %s%s\n", k.name.c_str(),
              ours.str().c_str(), k.paper_bound.str().c_str(), k.sota.c_str(),
              k.improvement.c_str(), match ? "" : "  [differs: see notes]");
  if (!match && !k.notes.empty()) {
    std::printf("%-22s |   note: %s\n", "", k.notes.c_str());
  }
}

inline int run_category(const char* title, const std::string& category,
                        int max_rows = -1) {
  print_header(title);
  int rows = 0;
  for (const auto& k : kernels::table2_kernels()) {
    if (k.category != category) continue;
    if (max_rows >= 0 && rows >= max_rows) break;
    print_row(k);
    ++rows;
  }
  std::printf("%d applications analyzed.\n", rows);
  return 0;
}

}  // namespace soap::bench
