// Shared table-printing helpers for the Table 2 reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_flags.hpp"
#include "kernels/table2.hpp"
#include "support/parallel.hpp"

namespace soap::bench {

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-22s | %-38s | %-38s | %-34s | %s\n", "kernel",
              "SOAP bound (this implementation)", "paper bound (Table 2)",
              "prior state of the art", "improv.");
  std::printf("%s\n", std::string(150, '-').c_str());
}

inline void print_row(const kernels::KernelEntry& k, const sym::Expr& ours) {
  bool match = sym::numerically_equal(ours, k.paper_bound);
  std::printf("%-22s | %-38s | %-38s | %-34s | %s%s\n", k.name.c_str(),
              ours.str().c_str(), k.paper_bound.str().c_str(), k.sota.c_str(),
              k.improvement.c_str(), match ? "" : "  [differs: see notes]");
  if (!match && !k.notes.empty()) {
    std::printf("%-22s |   note: %s\n", "", k.notes.c_str());
  }
}

/// Analyzes one registry family as a batch of (kernel x subgraph-shard)
/// work items (`threads` executors; default 1 = serial): kernels are
/// claimed concurrently and each kernel's inner analysis pipeline shards
/// its subgraphs across the same executor, so the family's longest
/// kernel no longer serializes the tail.  The bounds land in per-kernel
/// slots and the table is printed afterwards in registry order, so the
/// output is byte-identical for every thread count.  Returns non-zero for
/// an unknown (empty) family so a driver typo fails loudly.
inline int run_family(const char* title, const std::string& family,
                      int max_rows = -1, std::size_t threads = 1) {
  print_header(title);
  std::vector<const kernels::KernelEntry*> rows =
      kernels::Registry::instance().family(family);
  if (rows.empty()) {
    std::printf("unknown kernel family '%s'\n", family.c_str());
    return 1;
  }
  if (max_rows >= 0 && rows.size() > static_cast<std::size_t>(max_rows)) {
    rows.resize(static_cast<std::size_t>(max_rows));
  }
  std::vector<sym::Expr> bounds =
      kernels::analyze_corpus(rows, threads);
  for (std::size_t i = 0; i < rows.size(); ++i) print_row(*rows[i], bounds[i]);
  std::printf("%zu applications analyzed.\n", rows.size());
  return 0;
}

}  // namespace soap::bench
