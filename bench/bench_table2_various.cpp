// Experiment T2-var: LULESH, COSMO horizontal diffusion, vertical advection.
#include "bench_common.hpp"

int main() {
  return soap::bench::run_category(
      "Table 2 / Various: first I/O lower bounds beyond the polyhedral model",
      "various");
}
