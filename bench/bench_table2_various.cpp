// Experiment T2-var: LULESH, COSMO horizontal diffusion, vertical advection.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  return soap::bench::run_family(
      "Table 2 / Various: first I/O lower bounds beyond the polyhedral model",
      "various", soap::bench::smoke_requested(argc, argv) ? 1 : -1,
      soap::bench::threads_requested(argc, argv));
}
