// Experiment V-scale: analysis cost vs program size (the paper reports its
// approach scales to ~35 statements), plus the thread sweeps of the staged
// SDG analysis pipeline and the sharded pebble-game validation path.
// google-benchmark over synthetic statement chains, the Table 2 corpus
// batch, and a batch of pebbling validation cases.
#include <benchmark/benchmark.h>

#include "frontend/lower.hpp"
#include "kernels/table2.hpp"
#include "pebbles/validate.hpp"
#include "sdg/multi_statement.hpp"
#include "sdg/subgraph.hpp"

namespace {

soap::Program chain_program(int statements) {
  std::string src;
  std::string prev = "a0";
  for (int i = 1; i <= statements; ++i) {
    std::string cur = "a" + std::to_string(i);
    src += "for i in range(N):\n  for j in range(N):\n    " + cur +
           "[i,j] = " + prev + "[i,j]\n";
    prev = cur;
  }
  return soap::frontend::parse_program(src);
}

void BM_SdgAnalysisChain(benchmark::State& state) {
  soap::Program p = chain_program(static_cast<int>(state.range(0)));
  soap::sdg::SdgOptions opt;
  opt.max_subgraph_size = 3;
  for (auto _ : state) {
    auto b = soap::sdg::multi_statement_bound(p, opt);
    benchmark::DoNotOptimize(b);
  }
  state.counters["statements"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SdgAnalysisChain)->Arg(5)->Arg(10)->Arg(20)->Arg(35);

// The thread sweep of the same end-to-end path: per-subgraph work sharded
// across SdgOptions::threads workers, output bit-identical at every count.
void BM_SdgAnalysisChainThreads(benchmark::State& state) {
  soap::Program p = chain_program(static_cast<int>(state.range(0)));
  soap::sdg::SdgOptions opt;
  opt.max_subgraph_size = 3;
  opt.threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    auto b = soap::sdg::multi_statement_bound(p, opt);
    benchmark::DoNotOptimize(b);
  }
  state.counters["statements"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SdgAnalysisChainThreads)
    ->Name("BM_SdgAnalysisChain")
    ->ArgNames({"", "threads"})
    ->ArgsProduct({{35}, {1, 2, 4, 8}});

void BM_SubgraphEnumeration(benchmark::State& state) {
  soap::Program p = chain_program(static_cast<int>(state.range(0)));
  soap::sdg::Sdg g = soap::sdg::Sdg::build(p);
  std::size_t count = 0;
  for (auto _ : state) {
    auto subs = soap::sdg::enumerate_subgraphs(g, 3);
    count = subs.size();
    benchmark::DoNotOptimize(subs);
  }
  state.counters["subgraphs"] = static_cast<double>(count);
}
BENCHMARK(BM_SubgraphEnumeration)->Arg(10)->Arg(20)->Arg(35);

// The 38-application corpus analyzed as one batch, sharded kernel-by-kernel
// across the pool (each kernel's own analysis serial) — the deployment shape
// of the Table 2 drivers.
void BM_Table2CorpusBatch(benchmark::State& state) {
  // Pinned to the original 38 Table 2 rows (not the full registry) so the
  // number stays comparable with the committed baselines across PRs.
  const auto kernels = soap::kernels::table2_kernels();
  for (auto _ : state) {
    auto bounds = soap::kernels::analyze_corpus(
        kernels, static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(bounds);
  }
  state.counters["kernels"] = static_cast<double>(kernels.size());
}
BENCHMARK(BM_Table2CorpusBatch)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The sharded pebble-game validation path: Belady schedule generation +
// game replay for one CDAG across a sweep of cache sizes, fanned over the
// pool (pebbles::validate_schedules); results are slot-per-case, so the
// outcome is identical for every thread count.
void BM_PebbleValidation(benchmark::State& state) {
  soap::Program p = soap::frontend::parse_program(R"(
for i in range(N):
  for j in range(N):
    for k in range(N):
      C[i,j] += A[i,k] * B[k,j]
)");
  soap::pebbles::Cdag cdag = soap::pebbles::instantiate(p, {{"N", 6}});
  std::vector<soap::pebbles::PebbleCase> cases;
  for (std::size_t S = 4; S <= 40; S += 2) cases.push_back({&cdag, S});
  soap::pebbles::ShardOptions shard;
  shard.threads = static_cast<std::size_t>(state.range(0));
  std::size_t consistent = 0;
  for (auto _ : state) {
    auto results = soap::pebbles::validate_schedules(
        cases, soap::pebbles::Replacement::kBelady, shard);
    consistent = 0;
    for (const auto& r : results) consistent += r.consistent() ? 1 : 0;
    benchmark::DoNotOptimize(results);
  }
  state.counters["cases"] = static_cast<double>(cases.size());
  state.counters["consistent"] = static_cast<double>(consistent);
}
BENCHMARK(BM_PebbleValidation)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
